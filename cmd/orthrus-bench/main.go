// Command orthrus-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	orthrus-bench -list
//	orthrus-bench -experiment fig4b
//	orthrus-bench -experiment all -duration 1s -records 1000000 -threads 80
//	orthrus-bench -experiment batching
//	orthrus-bench -experiment adaptive -json bench-out
//
// Each experiment prints the same series the corresponding paper figure
// plots; see README.md "Regenerating the paper's figures" for the expected shapes and
// paper-vs-measured comparison. Beyond the figures, the openloop
// experiment reports commit latency under offered load, the batching
// experiment reports message-plane ring operations and throughput per
// BatchSize, the adaptive experiment compares static vs elastic CC
// routing across a mid-run hot-set shift, the durability experiment
// sweeps WAL sync policy and group-commit size against the no-WAL
// baseline, the scan experiment sweeps a YCSB-E scan mix (scan
// fraction × max scan length, pinnable with -scan-pct/-scan-maxlen)
// across all four engines, and the htap experiment compares MVCC
// snapshot scans against locking scans under a contended transfer mix
// (analytics fraction pinnable with -readonly-pct). With -json <dir>, each experiment's series is also written
// as JSON rows (one object per line) to <dir>/BENCH_<id>.json for
// mechanical tracking across checkouts.
//
// Profiling: -cpuprofile, -memprofile and -mutexprofile write pprof
// files covering the run, e.g.
//
//	orthrus-bench -experiment batching -cpuprofile cpu.pb.gz
//	go tool pprof cpu.pb.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/harness"
)

// startProfiles turns on the requested profilers and returns a stop
// function that writes the profile files. CPU profiling runs for the
// whole invocation; heap and mutex profiles are snapshotted at exit —
// point them at a single experiment (-experiment batching) rather than
// 'all' for an attributable profile.
func startProfiles(cpu, mem, mutex string) func() {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orthrus-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "orthrus-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		cpuFile = f
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(5)
	}
	write := func(path, profile string) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orthrus-bench: writing %s profile: %v\n", profile, err)
			os.Exit(2)
		}
		defer f.Close()
		if profile == "heap" {
			runtime.GC() // report live objects, not dead garbage
		}
		if err := pprof.Lookup(profile).WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "orthrus-bench: writing %s profile: %v\n", profile, err)
			os.Exit(2)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			write(mem, "heap")
		}
		if mutex != "" {
			write(mutex, "mutex")
		}
	}
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (fig1, fig4a, ... fig12b) or 'all'")
		list       = flag.Bool("list", false, "list available experiments")
		duration   = flag.Duration("duration", 300*time.Millisecond, "measured duration per data point")
		records    = flag.Uint64("records", 100_000, "YCSB table size (paper: 10,000,000)")
		recordSize = flag.Int("recordsize", 100, "record payload bytes (paper: 1,000)")
		threads    = flag.Int("threads", 80, "cap on the thread-count axes (paper machine: 80 cores)")
		items      = flag.Int("tpcc-items", 1000, "TPC-C items per warehouse (spec: 100,000)")
		custs      = flag.Int("tpcc-customers", 100, "TPC-C customers per district (spec: 3,000)")
		scanPct    = flag.Int("scan-pct", 0, "scan experiment: pin the scan fraction (percent; 0 sweeps, out-of-range panics)")
		scanLen    = flag.Int("scan-maxlen", 0, "scan experiment: pin the max scan length (0 sweeps, out-of-range panics)")
		roPct      = flag.Int("readonly-pct", 0, "htap experiment: pin the analytics fraction (percent; 0 uses the default, out-of-range panics)")
		jsonDir    = flag.String("json", "", "also write each experiment's series as JSON rows to <dir>/BENCH_<id>.json")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile (after GC) to this file at exit")
		mutexProf  = flag.String("mutexprofile", "", "write a mutex-contention profile to this file at exit")
	)
	flag.Parse()

	stopProfiles := startProfiles(*cpuProf, *memProf, *mutexProf)
	defer stopProfiles()

	if *list {
		fmt.Println("Available experiments:")
		for _, e := range harness.Registry() {
			fmt.Printf("  %-8s %-13s %s\n", e.ID, e.Figure, e.Description)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "orthrus-bench: -experiment or -list required (try -list)")
		os.Exit(2)
	}

	cfg := harness.Config{
		Duration:      *duration,
		Records:       *records,
		RecordSize:    *recordSize,
		MaxThreads:    *threads,
		TPCCItems:     *items,
		TPCCCustomers: *custs,
		ScanPct:       *scanPct,
		ScanMaxLen:    *scanLen,
		ReadOnlyPct:   *roPct,
		Out:           os.Stdout,
	}.Defaults()

	if *experiment == "all" {
		for _, e := range harness.Registry() {
			if err := harness.Run(e, cfg, *jsonDir); err != nil {
				fmt.Fprintf(os.Stderr, "orthrus-bench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := harness.Get(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "orthrus-bench: unknown experiment %q (try -list)\n", *experiment)
		os.Exit(2)
	}
	if err := harness.Run(e, cfg, *jsonDir); err != nil {
		fmt.Fprintf(os.Stderr, "orthrus-bench: %s: %v\n", e.ID, err)
		os.Exit(1)
	}
}
