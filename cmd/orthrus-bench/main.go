// Command orthrus-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	orthrus-bench -list
//	orthrus-bench -experiment fig4b
//	orthrus-bench -experiment all -duration 1s -records 1000000 -threads 80
//	orthrus-bench -experiment batching
//	orthrus-bench -experiment adaptive -json bench-out
//
// Each experiment prints the same series the corresponding paper figure
// plots; see README.md "Regenerating the paper's figures" for the expected shapes and
// paper-vs-measured comparison. Beyond the figures, the openloop
// experiment reports commit latency under offered load, the batching
// experiment reports message-plane ring operations and throughput per
// BatchSize, the adaptive experiment compares static vs elastic CC
// routing across a mid-run hot-set shift, the durability experiment
// sweeps WAL sync policy and group-commit size against the no-WAL
// baseline, the scan experiment sweeps a YCSB-E scan mix (scan
// fraction × max scan length, pinnable with -scan-pct/-scan-maxlen)
// across all four engines, and the htap experiment compares MVCC
// snapshot scans against locking scans under a contended transfer mix
// (analytics fraction pinnable with -readonly-pct). With -json <dir>, each experiment's series is also written
// as JSON rows (one object per line) to <dir>/BENCH_<id>.json for
// mechanical tracking across checkouts.
//
// Profiling: -cpuprofile, -memprofile and -mutexprofile write pprof
// files covering the run, e.g.
//
//	orthrus-bench -experiment batching -cpuprofile cpu.pb.gz
//	go tool pprof cpu.pb.gz
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/orthrus"
	"repro/internal/storage"
	"repro/internal/workload"
)

// startProfiles turns on the requested profilers and returns a stop
// function that writes the profile files. CPU profiling runs for the
// whole invocation; heap and mutex profiles are snapshotted at exit —
// point them at a single experiment (-experiment batching) rather than
// 'all' for an attributable profile.
func startProfiles(cpu, mem, mutex string) func() {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orthrus-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "orthrus-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		cpuFile = f
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(5)
	}
	write := func(path, profile string) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orthrus-bench: writing %s profile: %v\n", profile, err)
			os.Exit(2)
		}
		defer f.Close()
		if profile == "heap" {
			runtime.GC() // report live objects, not dead garbage
		}
		if err := pprof.Lookup(profile).WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "orthrus-bench: writing %s profile: %v\n", profile, err)
			os.Exit(2)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			write(mem, "heap")
		}
		if mutex != "" {
			write(mutex, "mutex")
		}
	}
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (fig1, fig4a, ... fig12b) or 'all'")
		list       = flag.Bool("list", false, "list available experiments")
		duration   = flag.Duration("duration", 300*time.Millisecond, "measured duration per data point")
		records    = flag.Uint64("records", 100_000, "YCSB table size (paper: 10,000,000)")
		recordSize = flag.Int("recordsize", 100, "record payload bytes (paper: 1,000)")
		threads    = flag.Int("threads", 80, "cap on the thread-count axes (paper machine: 80 cores)")
		items      = flag.Int("tpcc-items", 1000, "TPC-C items per warehouse (spec: 100,000)")
		custs      = flag.Int("tpcc-customers", 100, "TPC-C customers per district (spec: 3,000)")
		scanPct    = flag.Int("scan-pct", 0, "scan experiment: pin the scan fraction (percent; 0 sweeps, out-of-range panics)")
		scanLen    = flag.Int("scan-maxlen", 0, "scan experiment: pin the max scan length (0 sweeps, out-of-range panics)")
		roPct      = flag.Int("readonly-pct", 0, "htap experiment: pin the analytics fraction (percent; 0 uses the default, out-of-range panics)")
		jsonDir    = flag.String("json", "", "also write each experiment's series as JSON rows to <dir>/BENCH_<id>.json")
		transport  = flag.String("transport", "inproc", "message plane: inproc, or tcp for the two-process split (give -listen on the cc node, -peers on the exec node)")
		listen     = flag.String("listen", "", "tcp node mode, cc role: host:port to accept the exec node on (port 0 picks a free port; the bound address is printed as 'LISTEN <addr>')")
		peers      = flag.String("peers", "", "tcp node mode, exec role: the cc node's host:port")
		ccThreads  = flag.Int("cc-threads", 2, "tcp node mode: CC thread count (must match on both nodes)")
		exThreads  = flag.Int("exec-threads", 8, "tcp node mode: execution thread count (must match on both nodes)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile (after GC) to this file at exit")
		mutexProf  = flag.String("mutexprofile", "", "write a mutex-contention profile to this file at exit")
	)
	flag.Parse()

	stopProfiles := startProfiles(*cpuProf, *memProf, *mutexProf)
	defer stopProfiles()

	switch *transport {
	case "inproc":
		if *listen != "" || *peers != "" {
			fmt.Fprintln(os.Stderr, "orthrus-bench: -listen/-peers require -transport tcp")
			os.Exit(2)
		}
		// The distributed experiment runs its cc node as a real second
		// process by re-executing this binary in tcp node mode.
		harness.NodeCommand = spawnCCNode
	case "tcp":
		runTCPNode(*listen, *peers, *ccThreads, *exThreads, *duration, *records, *recordSize)
		return
	default:
		fmt.Fprintf(os.Stderr, "orthrus-bench: unknown -transport %q (want inproc or tcp)\n", *transport)
		os.Exit(2)
	}

	if *list {
		fmt.Println("Available experiments:")
		for _, e := range harness.Registry() {
			fmt.Printf("  %-8s %-13s %s\n", e.ID, e.Figure, e.Description)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "orthrus-bench: -experiment or -list required (try -list)")
		os.Exit(2)
	}

	cfg := harness.Config{
		Duration:      *duration,
		Records:       *records,
		RecordSize:    *recordSize,
		MaxThreads:    *threads,
		TPCCItems:     *items,
		TPCCCustomers: *custs,
		ScanPct:       *scanPct,
		ScanMaxLen:    *scanLen,
		ReadOnlyPct:   *roPct,
		Out:           os.Stdout,
	}.Defaults()

	if *experiment == "all" {
		for _, e := range harness.Registry() {
			if err := harness.Run(e, cfg, *jsonDir); err != nil {
				fmt.Fprintf(os.Stderr, "orthrus-bench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := harness.Get(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "orthrus-bench: unknown experiment %q (try -list)\n", *experiment)
		os.Exit(2)
	}
	if err := harness.Run(e, cfg, *jsonDir); err != nil {
		fmt.Fprintf(os.Stderr, "orthrus-bench: %s: %v\n", e.ID, err)
		os.Exit(1)
	}
}

// fail prints a CLI error and exits; the tcp node modes use it in place
// of the engine's panics so a two-process run dies with a readable line.
func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "orthrus-bench: "+format+"\n", args...)
	os.Exit(1)
}

// runTCPNode runs one half of the two-process split. With -listen this
// process is the cc node: it binds, advertises the address on stdout,
// and serves lock management until the exec node's goodbye. With -peers
// it is the exec node: it dials the cc node, drives the transfer
// workload for the configured duration, property-checks conservation,
// and reports throughput plus the wire counters.
func runTCPNode(listen, peers string, cc, ex int, duration time.Duration, records uint64, recordSize int) {
	if (listen == "") == (peers == "") {
		fail("-transport tcp needs exactly one of -listen (cc node) or -peers (exec node)")
	}
	db := storage.NewDB()
	tbl := db.Create(storage.Layout{Name: "ycsb", NumRecords: records, RecordSize: recordSize})

	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			fail("listen %s: %v", listen, err)
		}
		fmt.Printf("LISTEN %s\n", ln.Addr())
		eng := orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: ex,
			Transport: orthrus.TransportConfig{Kind: "tcp", Role: "cc", Listener: ln}})
		eng.Start().Close() // Close gates on the exec node's goodbye
		m := eng.Messages()
		fmt.Printf("cc node done: handled %d acquires, %d forwards, %d releases; sent %d grants in %d frames (%.1f msgs/frame, %d bytes)\n",
			sumPerCC(m, func(s orthrus.CCStats) uint64 { return s.Acquires }),
			m.Forwards, sumPerCC(m, func(s orthrus.CCStats) uint64 { return s.Releases }),
			m.Grants, m.Net.FramesSent, m.Net.MessagesPerFrame(), m.Net.BytesSent)
		return
	}

	eng := orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: ex,
		Transport: orthrus.TransportConfig{Kind: "tcp", Role: "exec", Peer: peers}})
	src := &workload.Transfer{Table: tbl, NumRecords: records}
	res := eng.Run(src, duration)
	var sum uint64
	for k := uint64(0); k < records; k++ {
		sum += storage.GetU64(db.Table(tbl).Get(k), 0)
	}
	m := eng.Messages()
	fmt.Printf("exec node done: %.0f txns/sec, %d committed, %d aborted, p99 %dus; sent %d msgs in %d frames (%.1f msgs/frame, %d bytes)\n",
		res.Throughput(), res.Totals.Committed, res.Totals.Aborted,
		res.Totals.Latency.Percentile(99).Microseconds(),
		m.Net.MessagesSent, m.Net.FramesSent, m.Net.MessagesPerFrame(), m.Net.BytesSent)
	if sum != 0 {
		fail("conservation violated: transfer table sums to %d, want 0", sum)
	}
	fmt.Println("conservation: ok")
}

func sumPerCC(m orthrus.MessageStats, f func(orthrus.CCStats) uint64) uint64 {
	var s uint64
	for _, cs := range m.PerCC {
		s += f(cs)
	}
	return s
}

// spawnCCNode is harness.NodeCommand: it re-executes this binary as the
// cc node on a loopback port, scans its stdout for the advertised
// address, and returns a wait for clean child exit.
func spawnCCNode(c harness.Config, cc, ex int) (string, func() error) {
	exe, err := os.Executable()
	if err != nil {
		fail("distributed: locating own binary: %v", err)
	}
	cmd := exec.Command(exe,
		"-transport", "tcp", "-listen", "127.0.0.1:0",
		"-cc-threads", strconv.Itoa(cc), "-exec-threads", strconv.Itoa(ex),
		"-records", strconv.FormatUint(c.Records, 10),
		"-recordsize", strconv.Itoa(c.RecordSize))
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		fail("distributed: cc node stdout: %v", err)
	}
	if err := cmd.Start(); err != nil {
		fail("distributed: starting cc node: %v", err)
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
			return addr, func() error {
				for sc.Scan() {
					// Drain the child's report so its exit is clean.
				}
				return cmd.Wait()
			}
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	fail("distributed: cc node exited without advertising its address")
	return "", nil
}
