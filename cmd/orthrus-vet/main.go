// Command orthrus-vet is the repository's invariant checker: a
// go/vet-style multichecker that runs the seven orthrus analyzers
// (lockorder, hotpath, noalloc, recycle, atomicfield, configvalidate,
// panicmsg) over the packages named on the command line and exits
// nonzero on any diagnostic.
//
// Usage:
//
//	go run ./cmd/orthrus-vet ./...
//
// Suppress an individual finding with a justified annotation:
//
//	//orthrus:allow(<analyzer>) <reason>
//
// on the offending line, the line above it, or the enclosing function's
// doc comment. The reason is mandatory — a bare allow is itself a
// diagnostic.
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/configvalidate"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/panicmsg"
	"repro/internal/analysis/recycle"
)

var analyzers = []*analysis.Analyzer{
	lockorder.Analyzer,
	hotpath.Analyzer,
	noalloc.Analyzer,
	recycle.Analyzer,
	atomicfield.Analyzer,
	configvalidate.Analyzer,
	panicmsg.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orthrus-vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := prog.Run(analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orthrus-vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "orthrus-vet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
