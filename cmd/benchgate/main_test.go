package main

import (
	"strings"
	"testing"
)

const baselineText = `
goos: linux
BenchmarkRingPingPong/padded-4       	 5000000	       250.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkRingPingPong/unpadded-4     	 3000000	       400.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSubmitAllocs/orthrus-4      	 1000000	      1000 ns/op	       0 B/op	       0 allocs/op
BenchmarkAblationBatchSize/bs=8-4    	  500000	      2000 ns/op	   12345 txns/sec
PASS
`

func parsed(t *testing.T, text string) map[string]result {
	t.Helper()
	m, err := parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParse(t *testing.T) {
	m := parsed(t, baselineText)
	if len(m) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(m), m)
	}
	r, ok := m["BenchmarkRingPingPong/padded"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if r.nsPerOp != 250 || !r.hasAllocs || r.allocsPerOp != 0 {
		t.Fatalf("bad parse: %+v", r)
	}
	if a := m["BenchmarkAblationBatchSize/bs=8"]; a.hasAllocs {
		t.Fatalf("custom-metric line misparsed as having allocs: %+v", a)
	}
}

func TestGatePasses(t *testing.T) {
	base := parsed(t, baselineText)
	// 5% uniformly slower: within both the geomean and relative limits.
	cur := parsed(t, strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(baselineText,
		"250.0", "262.5"), "400.0", "420.0"), "1000 ns/op", "1050 ns/op"), "2000 ns/op", "2100 ns/op"))
	if fails := gate(base, cur, 1.10, 1.25); len(fails) != 0 {
		t.Fatalf("uniform 5%% drift should pass, got %v", fails)
	}
}

func TestGateGeomeanFails(t *testing.T) {
	base := parsed(t, baselineText)
	cur := parsed(t, strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(baselineText,
		"250.0", "312.5"), "400.0", "500.0"), "1000 ns/op", "1250 ns/op"), "2000 ns/op", "2500 ns/op"))
	fails := gate(base, cur, 1.10, 1.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "geomean") {
		t.Fatalf("uniform 25%% slowdown should fail the geomean check, got %v", fails)
	}
}

func TestGateIsolatedRegressionFails(t *testing.T) {
	base := parsed(t, baselineText)
	// Whole run 40% slower (new machine) — but one benchmark 2.8x slower.
	// Median normalization must catch the outlier and only the outlier.
	cur := parsed(t, strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(baselineText,
		"250.0", "350.0"), "400.0", "560.0"), "1000 ns/op", "2800 ns/op"), "2000 ns/op", "2800 ns/op"))
	fails := gate(base, cur, 100, 1.25) // geomean disabled: isolate the relative check
	if len(fails) != 1 || !strings.Contains(fails[0], "BenchmarkSubmitAllocs/orthrus") {
		t.Fatalf("want exactly the isolated ns/op regression, got %v", fails)
	}
}

func TestGateAllocRegressionFails(t *testing.T) {
	base := parsed(t, baselineText)
	cur := parsed(t, strings.Replace(baselineText,
		"1000 ns/op	       0 B/op	       0 allocs/op",
		"1000 ns/op	      48 B/op	       3 allocs/op", 1))
	fails := gate(base, cur, 1.10, 1.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocation regression") {
		t.Fatalf("0 -> 3 allocs/op must fail absolutely, got %v", fails)
	}
}

func TestGateMissingOverlap(t *testing.T) {
	base := parsed(t, baselineText)
	cur := parsed(t, "BenchmarkBrandNew-4 100 50.0 ns/op\n")
	fails := gate(base, cur, 1.10, 1.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "no benchmarks in common") {
		t.Fatalf("disjoint sets must be reported, got %v", fails)
	}
}
