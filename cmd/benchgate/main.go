// Command benchgate is the CI performance gate: it compares a `go test
// -bench` run against a checked-in baseline and exits nonzero on
// regression. The module has no external dependencies, so this is a
// purpose-built, deliberately small replacement for benchstat.
//
// Usage:
//
//	go test -run '^$' -bench <pattern> -benchmem ./... > current.txt
//	go run ./cmd/benchgate -baseline bench-baseline.txt current.txt
//
// Two checks run over the benchmarks present in both files:
//
//   - Throughput (ns/op). The geometric mean of the current/baseline
//     ratios must not exceed 1.10 — a >10% across-the-board slowdown
//     fails. Because CI hardware varies run to run, each ratio is also
//     compared against the run's median ratio: a single benchmark more
//     than 25% slower than the median drift fails even when the whole
//     run is uniformly slower or faster (machine-speed changes cancel
//     out of the median-normalized ratio; genuine single-path
//     regressions do not).
//   - Allocations (allocs/op). Compared absolutely, not by ratio: the
//     zero-allocation benchmarks must stay at zero, and any benchmark
//     that allocates more per op than its baseline fails regardless of
//     speed. (A ratio gate would wave through 0 → 3 allocs, the exact
//     regression this PR exists to prevent.)
//
// Benchmarks present in only one file are reported but do not fail the
// gate (new benchmarks land before their baseline is regenerated).
//
// Regenerate the baseline on the CI runner class (see .github/workflows/
// ci.yml for the exact bench pattern):
//
//	go test -run '^$' -bench 'BenchmarkSubmitAllocs|BenchmarkAblationBatchSize' -benchmem -benchtime 200x . > bench-baseline.txt
//	go test -run '^$' -bench 'BenchmarkRingPingPong' -benchmem ./internal/spsc >> bench-baseline.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// benchRE matches "BenchmarkName[-procs] <iters> <value> ns/op ...".
var benchRE = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parse reads go test -bench output, keyed by benchmark name with the
// GOMAXPROCS suffix stripped.
func parse(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchRE.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name, fields := m[1], strings.Fields(m[2])
		var res result
		seen := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.nsPerOp, seen = v, true
			case "allocs/op":
				res.allocsPerOp, res.hasAllocs = v, true
			}
		}
		if seen {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// gate compares current against baseline and returns failure messages.
func gate(baseline, current map[string]result, geomeanLimit, relativeLimit float64) []string {
	var names []string
	for name := range baseline {
		if _, ok := current[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return []string{"no benchmarks in common between baseline and current run"}
	}

	var failures []string
	ratios := make(map[string]float64, len(names))
	var sorted []float64
	logSum := 0.0
	for _, name := range names {
		b, c := baseline[name], current[name]
		if b.nsPerOp <= 0 {
			continue
		}
		r := c.nsPerOp / b.nsPerOp
		ratios[name] = r
		sorted = append(sorted, r)
		logSum += math.Log(r)

		if b.hasAllocs && c.hasAllocs && c.allocsPerOp > b.allocsPerOp {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f allocs/op, baseline %.0f (allocation regression)",
				name, c.allocsPerOp, b.allocsPerOp))
		}
	}
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	geomean := math.Exp(logSum / float64(len(sorted)))

	if geomean > geomeanLimit {
		failures = append(failures, fmt.Sprintf(
			"geomean ns/op ratio %.3f exceeds %.2f (across-the-board slowdown)", geomean, geomeanLimit))
	}
	for _, name := range names {
		if r, ok := ratios[name]; ok && r/median > relativeLimit {
			failures = append(failures, fmt.Sprintf(
				"%s: ns/op ratio %.3f is %.0f%% above the run median %.3f (isolated regression)",
				name, r, (r/median-1)*100, median))
		}
	}
	return failures
}

func main() {
	baselinePath := flag.String("baseline", "bench-baseline.txt", "checked-in baseline bench output")
	geomeanLimit := flag.Float64("geomean", 1.10, "maximum geometric-mean ns/op ratio")
	relativeLimit := flag.Float64("relative", 1.25, "maximum median-normalized ns/op ratio per benchmark")
	flag.Parse()

	bf, err := os.Open(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	baseline, err := parse(bf)
	bf.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing baseline: %v\n", err)
		os.Exit(2)
	}

	var cur io.Reader = os.Stdin
	if flag.NArg() > 0 {
		cf, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		defer cf.Close()
		cur = cf
	}
	current, err := parse(cur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing current run: %v\n", err)
		os.Exit(2)
	}

	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Printf("benchgate: note: %s has no baseline yet (regenerate bench-baseline.txt)\n", name)
		}
	}

	failures := gate(baseline, current, *geomeanLimit, *relativeLimit)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (%d benchmarks compared)\n", len(current))
}
