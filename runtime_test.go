package repro_test

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro"
)

// Runtime/Session lifecycle tests: the service surface must provide the
// same isolation guarantees as the closed-loop benchmark surface, because
// it is the same engine — Run is only a driver over Start/Submit/Close.

// allRuntimes mirrors allEngines but exposes the Runtime surface.
func allRuntimes(t testing.TB) []struct {
	rt  repro.System
	db  *repro.DB
	tbl int
} {
	t.Helper()
	const n, threads = 64, 4
	type entry = struct {
		rt  repro.System
		db  *repro.DB
		tbl int
	}
	var out []entry
	build := func(f func(db *repro.DB) repro.System) {
		db, tbl := newAccountDB(t, n, 1000)
		out = append(out, entry{f(db), db, tbl})
	}
	build(func(db *repro.DB) repro.System {
		return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2})
	})
	build(func(db *repro.DB) repro.System {
		return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: db, Threads: threads})
	})
	build(func(db *repro.DB) repro.System {
		return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: threads})
	})
	build(func(db *repro.DB) repro.System {
		return repro.NewPartitionedStore(repro.PartitionedStoreConfig{DB: db, Partitions: threads})
	})
	return out
}

// Direct session use: concurrent submitters, per-transaction completion,
// Drain, Close. Balances must be conserved and every submission must
// complete exactly once.
func TestSessionSubmitDrainClose(t *testing.T) {
	for _, e := range allRuntimes(t) {
		e := e
		t.Run(e.rt.Name(), func(t *testing.T) {
			const submitters, perSubmitter = 4, 200
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			ses := e.rt.Start()

			var wg sync.WaitGroup
			var completions sync.WaitGroup
			completions.Add(submitters * perSubmitter)
			for s := 0; s < submitters; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(s)))
					for i := 0; i < perSubmitter; i++ {
						ses.Submit(src.Next(s, rng), func(bool) { completions.Done() })
					}
				}(s)
			}
			wg.Wait()
			ses.Drain()
			completions.Wait() // Drain implies every callback fired
			res := ses.Close()

			if got, want := res.Totals.Committed, uint64(submitters*perSubmitter); got != want {
				t.Fatalf("committed %d, want %d", got, want)
			}
			if res.Totals.Latency.Count() != res.Totals.Committed {
				t.Fatalf("latency samples %d != commits %d", res.Totals.Latency.Count(), res.Totals.Committed)
			}
			if got := sumBalances(e.db, e.tbl, 64); got != 64*1000 {
				t.Fatalf("sum = %d, want %d", got, 64*1000)
			}
		})
	}
}

// Driver equivalence: the shared closed-loop driver over Runtime must
// preserve exactly the guarantees the old in-engine loops provided —
// commits counted once, balances conserved — and Engine.Run must be the
// same code path as RunClosedLoop.
func TestClosedLoopDriverEquivalence(t *testing.T) {
	for _, e := range allRuntimes(t) {
		e := e
		t.Run(e.rt.Name(), func(t *testing.T) {
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}

			// Via the generic driver over the Runtime surface.
			res := repro.RunClosedLoop(e.rt, src, 60*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("driver produced no commits")
			}
			if got := sumBalances(e.db, e.tbl, 64); got != 64*1000 {
				t.Fatalf("sum after driver = %d, want %d", got, 64*1000)
			}

			// Via Engine.Run on the same engine instance: same invariants,
			// same reporting shape (it is the same driver).
			res2 := e.rt.Run(src, 60*time.Millisecond)
			if res2.Totals.Committed == 0 {
				t.Fatal("Run produced no commits")
			}
			if res2.System != res.System {
				t.Fatalf("system name mismatch: %q vs %q", res2.System, res.System)
			}
			if got := sumBalances(e.db, e.tbl, 64); got != 64*1000 {
				t.Fatalf("sum after Run = %d, want %d", got, 64*1000)
			}
			if res2.Totals.Latency.Count() != res2.Totals.Committed {
				t.Fatalf("latency samples %d != commits %d", res2.Totals.Latency.Count(), res2.Totals.Committed)
			}
		})
	}
}

// The open-loop driver: every offered transaction completes, the
// driver-side histogram records exactly one sample per transaction, and
// balances are conserved under the arrival process.
func TestOpenLoopDriver(t *testing.T) {
	db, tbl := newAccountDB(t, 64, 1000)
	eng := repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2})
	src := &repro.Transfer{Table: tbl, NumRecords: 64}

	res := repro.RunOpenLoop(eng, src, 2000, 150*time.Millisecond)
	if res.Submitted == 0 {
		t.Fatal("no arrivals generated")
	}
	if res.Totals.Committed != res.Submitted {
		t.Fatalf("committed %d != submitted %d", res.Totals.Committed, res.Submitted)
	}
	if res.Latency.Count() != res.Submitted {
		t.Fatalf("latency samples %d != submitted %d", res.Latency.Count(), res.Submitted)
	}
	if res.Latency.Percentile(99) < res.Latency.Percentile(50) {
		t.Fatalf("implausible percentiles: %v", &res.Latency)
	}
	if got := sumBalances(db, tbl, 64); got != 64*1000 {
		t.Fatalf("sum = %d, want %d", got, 64*1000)
	}
	// ~2000/s over 150ms ≈ 300 arrivals; allow wide Poisson/timer slack
	// but catch a generator that ignores the rate entirely.
	if res.Submitted < 100 || res.Submitted > 900 {
		t.Fatalf("submitted %d, want ≈300 for 2000/s over 150ms", res.Submitted)
	}
}

// delayRuntime is a stub engine whose transactions "commit" a fixed delay
// after submission — a deterministic model of an abort/retry chain (or any
// other in-engine stall). It lets the open-loop latency contract be
// asserted numerically: latency is measured from scheduled arrival to the
// *final* commit, so the whole delay must appear in every sample.
type delayRuntime struct {
	delay   time.Duration
	mu      sync.Mutex
	pending sync.WaitGroup
	closed  bool
	commits uint64
	latency repro.Histogram
	started time.Time
}

func (d *delayRuntime) Name() string { return "delay-stub" }
func (d *delayRuntime) Clients() int { return 8 }
func (d *delayRuntime) Start() repro.Session {
	d.started = time.Now()
	return d
}

func (d *delayRuntime) Submit(t *repro.Txn, done func(bool)) {
	d.pending.Add(1)
	start := time.Now()
	time.AfterFunc(d.delay, func() {
		d.mu.Lock()
		d.commits++
		d.latency.Record(time.Since(start))
		d.mu.Unlock()
		if done != nil {
			done(true)
		}
		d.pending.Done()
	})
}

func (d *delayRuntime) Drain() { d.pending.Wait() }
func (d *delayRuntime) Close() repro.Result {
	d.pending.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	return repro.Result{System: d.Name(),
		Totals:   repro.Totals{Committed: d.commits, Latency: d.latency},
		Duration: time.Since(d.started)}
}

// Open-loop latency must span scheduled arrival → final commit: a stub
// whose every transaction takes a known delay to commit must show that
// delay in every percentile, and the sample count must equal submissions.
func TestOpenLoopLatencySpansRetryDelay(t *testing.T) {
	const delay = 5 * time.Millisecond
	rt := &delayRuntime{delay: delay}
	res := repro.RunOpenLoop(rt, &repro.Transfer{NumRecords: 64}, 500, 100*time.Millisecond)
	if res.Submitted == 0 {
		t.Fatal("no arrivals")
	}
	if res.Latency.Count() != res.Submitted {
		t.Fatalf("latency samples %d != submitted %d", res.Latency.Count(), res.Submitted)
	}
	// The histogram is log₂-bucketed: Percentile reports a bucket upper
	// edge, so compare against the exact per-sample floor via the mean.
	if got := res.Latency.Mean(); got < delay {
		t.Fatalf("mean open-loop latency %v < engine delay %v — retry time not charged", got, delay)
	}
	if p50 := res.Latency.Percentile(50); p50 < delay {
		t.Fatalf("p50 %v < engine delay %v", p50, delay)
	}
}

// yieldingTransfers generates transfers over two hot records that yield
// the scheduler between their two writes. Holding a lock across a yield
// forces conflicting holders to coexist even on a single-CPU machine,
// where microsecond transactions are otherwise never preempted mid-lock —
// making wait-die aborts deterministic instead of preemption-luck.
type yieldingTransfers struct{ tbl int }

func (s yieldingTransfers) Next(_ int, rng *rand.Rand) *repro.Txn {
	a := uint64(rng.Intn(2))
	b := 1 - a
	tx := &repro.Txn{Ops: []repro.Op{
		{Table: s.tbl, Key: a, Mode: repro.Write},
		{Table: s.tbl, Key: b, Mode: repro.Write},
	}}
	tx.Logic = func(ctx repro.Ctx) error {
		src, err := ctx.Write(s.tbl, a)
		if err != nil {
			return err
		}
		runtime.Gosched() // conflict window: lock on a held across a yield
		dst, err := ctx.Write(s.tbl, b)
		if err != nil {
			return err
		}
		repro.AddI64(src, 0, -1)
		repro.AddI64(dst, 0, 1)
		return nil
	}
	return tx
}

// Open-loop accounting under real aborts and retries: a hot-set transfer
// workload on wait-die 2PL aborts constantly, yet every submission must
// contribute exactly one latency sample (measured to its final commit)
// and conservation must hold under the arrival process.
func TestOpenLoopLatencyUnderAbortsAndRetries(t *testing.T) {
	db, tbl := newAccountDB(t, 64, 1000)
	eng := repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: 4})
	src := yieldingTransfers{tbl: tbl}
	res := repro.RunOpenLoop(eng, src, 30000, 150*time.Millisecond)
	if res.Submitted == 0 {
		t.Fatal("no arrivals")
	}
	if res.Totals.Aborted == 0 {
		t.Fatal("hot-set workload produced no aborts — the retry path is untested")
	}
	if res.Totals.Committed != res.Submitted {
		t.Fatalf("committed %d != submitted %d (a retry chain was dropped)", res.Totals.Committed, res.Submitted)
	}
	if res.Latency.Count() != res.Submitted {
		t.Fatalf("latency samples %d != submitted %d", res.Latency.Count(), res.Submitted)
	}
	if got := sumBalances(db, tbl, 64); got != 64*1000 {
		t.Fatalf("sum = %d, want %d", got, 64*1000)
	}
}

// With a group-commit WAL, open-loop latency must include the flush
// wait: under a pure-interval policy every acknowledgment stalls for a
// share of the flush cadence, which has to surface both in the
// driver-side histogram and in the engine's Log time component.
func TestOpenLoopLatencyIncludesFlushWait(t *testing.T) {
	const interval = 4 * time.Millisecond
	db, tbl := newAccountDB(t, 1024, 1000)
	log := repro.NewWAL(repro.NewWALMemDevice(), repro.WALGroup(1<<20, interval))
	defer log.Close()
	eng := repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2, Wal: log})
	src := &repro.Transfer{Table: tbl, NumRecords: 1024}
	res := repro.RunOpenLoop(eng, src, 1000, 120*time.Millisecond)
	if res.Submitted == 0 {
		t.Fatal("no arrivals")
	}
	if res.Latency.Count() != res.Submitted {
		t.Fatalf("latency samples %d != submitted %d", res.Latency.Count(), res.Submitted)
	}
	// Acks fire once per interval, so the average commit stalls roughly
	// interval/2; demand a conservative quarter to stay robust on slow CI.
	if p50 := res.Latency.Percentile(50); p50 < interval/4 {
		t.Fatalf("p50 %v does not include the flush wait (interval %v)", p50, interval)
	}
	if res.Totals.Log <= 0 {
		t.Fatal("no Log time accounted despite a group-commit WAL")
	}
	if res.Totals.Latency.Mean() < interval/4 {
		t.Fatalf("service latency %v excludes flush wait", res.Totals.Latency.Mean())
	}
}

// One live session per engine at a time: a second concurrent Start must
// panic loudly (it would race on engine-level state), while sequential
// Start→Close→Start reuse — what every Run call does — must work on all
// four systems.
func TestRuntimeSingleSessionContract(t *testing.T) {
	for _, e := range allRuntimes(t) {
		e := e
		t.Run(e.rt.Name(), func(t *testing.T) {
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			rng := rand.New(rand.NewSource(1))

			ses := e.rt.Start()
			func() {
				defer func() {
					if recover() == nil {
						t.Error("second concurrent Start did not panic")
					}
				}()
				e.rt.Start()
			}()

			// Sequential restart: close the live session, start another,
			// and prove the second session serves transactions correctly.
			ses.Submit(src.Next(0, rng), nil)
			ses.Drain()
			ses.Close()

			ses2 := e.rt.Start()
			for i := 0; i < 50; i++ {
				ses2.Submit(src.Next(0, rng), nil)
			}
			ses2.Drain()
			res := ses2.Close()
			if res.Totals.Committed != 50 {
				t.Fatalf("restarted session committed %d, want 50", res.Totals.Committed)
			}
			if got := sumBalances(e.db, e.tbl, 64); got != 64*1000 {
				t.Fatalf("sum = %d, want %d", got, 64*1000)
			}

			// Double Close must panic, not silently release the in-use
			// guard a newer session may hold.
			func() {
				defer func() {
					if recover() == nil {
						t.Error("second Close did not panic")
					}
				}()
				ses2.Close()
			}()
		})
	}
}

// Submit on a closed session must panic instead of hanging against
// stopped engine threads.
func TestSubmitAfterClosePanics(t *testing.T) {
	for _, e := range allRuntimes(t) {
		e := e
		t.Run(e.rt.Name(), func(t *testing.T) {
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			rng := rand.New(rand.NewSource(1))
			ses := e.rt.Start()
			ses.Submit(src.Next(0, rng), nil)
			ses.Drain()
			ses.Close()
			defer func() {
				if recover() == nil {
					t.Error("Submit after Close did not panic")
				}
			}()
			ses.Submit(src.Next(0, rng), nil)
		})
	}
}

// fixedSpread emits transactions touching exactly one key in each of k
// partitions of a k-way hash partitioning — a deterministic footprint,
// so message counts are exact.
type fixedSpread struct {
	table int
	k     int
	n     uint64
}

func (s *fixedSpread) Next(_ int, rng *rand.Rand) *repro.Txn {
	ops := make([]repro.Op, s.k)
	base := uint64(rng.Int63n(int64(s.n/uint64(s.k)-1))) * uint64(s.k)
	for i := 0; i < s.k; i++ {
		ops[i] = repro.Op{Table: s.table, Key: base + uint64(i), Mode: repro.Write}
	}
	t := &repro.Txn{Ops: ops}
	t.Logic = func(ctx repro.Ctx) error {
		for _, op := range t.Ops {
			rec, err := ctx.Write(op.Table, op.Key)
			if err != nil {
				return err
			}
			repro.AddU64(rec, 0, 1)
		}
		return nil
	}
	return t
}

// Message-plane ablation through the public API: with forwarding, a
// transaction spanning all Ncc CC threads costs exactly Ncc+1 acquisition
// messages; with DisableForwarding the execution thread mediates every
// hop and pays 2·Ncc (§3.3, Figures 2 and 3).
func TestMessagePlaneAblation(t *testing.T) {
	const ncc = 4
	for _, tc := range []struct {
		name    string
		naive   bool
		perTxn  float64
		comment string
	}{
		{"forwarding", false, ncc + 1, "Ncc+1"},
		{"exec-mediated", true, 2 * ncc, "2·Ncc"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			db := repro.NewDB()
			tbl := db.Create(repro.Layout{Name: "t", NumRecords: 1 << 12, RecordSize: 64})
			eng := repro.NewOrthrus(repro.OrthrusConfig{
				DB: db, CCThreads: ncc, ExecThreads: 2, DisableForwarding: tc.naive,
			})
			src := &fixedSpread{table: tbl, k: ncc, n: 1 << 12}
			res := eng.Run(src, 80*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			m := eng.Messages()
			got := float64(m.AcquisitionMessages()) / float64(res.Totals.Committed)
			if got != tc.perTxn {
				t.Fatalf("acquisition messages per txn = %v, want %v (%s); stats %+v commits %d",
					got, tc.perTxn, tc.comment, m, res.Totals.Committed)
			}
		})
	}
}
