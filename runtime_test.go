package repro_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro"
)

// Runtime/Session lifecycle tests: the service surface must provide the
// same isolation guarantees as the closed-loop benchmark surface, because
// it is the same engine — Run is only a driver over Start/Submit/Close.

// allRuntimes mirrors allEngines but exposes the Runtime surface.
func allRuntimes(t testing.TB) []struct {
	rt  repro.System
	db  *repro.DB
	tbl int
} {
	t.Helper()
	const n, threads = 64, 4
	type entry = struct {
		rt  repro.System
		db  *repro.DB
		tbl int
	}
	var out []entry
	build := func(f func(db *repro.DB) repro.System) {
		db, tbl := newAccountDB(t, n, 1000)
		out = append(out, entry{f(db), db, tbl})
	}
	build(func(db *repro.DB) repro.System {
		return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2})
	})
	build(func(db *repro.DB) repro.System {
		return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: db, Threads: threads})
	})
	build(func(db *repro.DB) repro.System {
		return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: threads})
	})
	build(func(db *repro.DB) repro.System {
		return repro.NewPartitionedStore(repro.PartitionedStoreConfig{DB: db, Partitions: threads})
	})
	return out
}

// Direct session use: concurrent submitters, per-transaction completion,
// Drain, Close. Balances must be conserved and every submission must
// complete exactly once.
func TestSessionSubmitDrainClose(t *testing.T) {
	for _, e := range allRuntimes(t) {
		e := e
		t.Run(e.rt.Name(), func(t *testing.T) {
			const submitters, perSubmitter = 4, 200
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			ses := e.rt.Start()

			var wg sync.WaitGroup
			var completions sync.WaitGroup
			completions.Add(submitters * perSubmitter)
			for s := 0; s < submitters; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(s)))
					for i := 0; i < perSubmitter; i++ {
						ses.Submit(src.Next(s, rng), func(bool) { completions.Done() })
					}
				}(s)
			}
			wg.Wait()
			ses.Drain()
			completions.Wait() // Drain implies every callback fired
			res := ses.Close()

			if got, want := res.Totals.Committed, uint64(submitters*perSubmitter); got != want {
				t.Fatalf("committed %d, want %d", got, want)
			}
			if res.Totals.Latency.Count() != res.Totals.Committed {
				t.Fatalf("latency samples %d != commits %d", res.Totals.Latency.Count(), res.Totals.Committed)
			}
			if got := sumBalances(e.db, e.tbl, 64); got != 64*1000 {
				t.Fatalf("sum = %d, want %d", got, 64*1000)
			}
		})
	}
}

// Driver equivalence: the shared closed-loop driver over Runtime must
// preserve exactly the guarantees the old in-engine loops provided —
// commits counted once, balances conserved — and Engine.Run must be the
// same code path as RunClosedLoop.
func TestClosedLoopDriverEquivalence(t *testing.T) {
	for _, e := range allRuntimes(t) {
		e := e
		t.Run(e.rt.Name(), func(t *testing.T) {
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}

			// Via the generic driver over the Runtime surface.
			res := repro.RunClosedLoop(e.rt, src, 60*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("driver produced no commits")
			}
			if got := sumBalances(e.db, e.tbl, 64); got != 64*1000 {
				t.Fatalf("sum after driver = %d, want %d", got, 64*1000)
			}

			// Via Engine.Run on the same engine instance: same invariants,
			// same reporting shape (it is the same driver).
			res2 := e.rt.Run(src, 60*time.Millisecond)
			if res2.Totals.Committed == 0 {
				t.Fatal("Run produced no commits")
			}
			if res2.System != res.System {
				t.Fatalf("system name mismatch: %q vs %q", res2.System, res.System)
			}
			if got := sumBalances(e.db, e.tbl, 64); got != 64*1000 {
				t.Fatalf("sum after Run = %d, want %d", got, 64*1000)
			}
			if res2.Totals.Latency.Count() != res2.Totals.Committed {
				t.Fatalf("latency samples %d != commits %d", res2.Totals.Latency.Count(), res2.Totals.Committed)
			}
		})
	}
}

// The open-loop driver: every offered transaction completes, the
// driver-side histogram records exactly one sample per transaction, and
// balances are conserved under the arrival process.
func TestOpenLoopDriver(t *testing.T) {
	db, tbl := newAccountDB(t, 64, 1000)
	eng := repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2})
	src := &repro.Transfer{Table: tbl, NumRecords: 64}

	res := repro.RunOpenLoop(eng, src, 2000, 150*time.Millisecond)
	if res.Submitted == 0 {
		t.Fatal("no arrivals generated")
	}
	if res.Totals.Committed != res.Submitted {
		t.Fatalf("committed %d != submitted %d", res.Totals.Committed, res.Submitted)
	}
	if res.Latency.Count() != res.Submitted {
		t.Fatalf("latency samples %d != submitted %d", res.Latency.Count(), res.Submitted)
	}
	if res.Latency.Percentile(99) < res.Latency.Percentile(50) {
		t.Fatalf("implausible percentiles: %v", &res.Latency)
	}
	if got := sumBalances(db, tbl, 64); got != 64*1000 {
		t.Fatalf("sum = %d, want %d", got, 64*1000)
	}
	// ~2000/s over 150ms ≈ 300 arrivals; allow wide Poisson/timer slack
	// but catch a generator that ignores the rate entirely.
	if res.Submitted < 100 || res.Submitted > 900 {
		t.Fatalf("submitted %d, want ≈300 for 2000/s over 150ms", res.Submitted)
	}
}

// One live session per engine at a time: a second concurrent Start must
// panic loudly (it would race on engine-level state), while sequential
// Start→Close→Start reuse — what every Run call does — must work on all
// four systems.
func TestRuntimeSingleSessionContract(t *testing.T) {
	for _, e := range allRuntimes(t) {
		e := e
		t.Run(e.rt.Name(), func(t *testing.T) {
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			rng := rand.New(rand.NewSource(1))

			ses := e.rt.Start()
			func() {
				defer func() {
					if recover() == nil {
						t.Error("second concurrent Start did not panic")
					}
				}()
				e.rt.Start()
			}()

			// Sequential restart: close the live session, start another,
			// and prove the second session serves transactions correctly.
			ses.Submit(src.Next(0, rng), nil)
			ses.Drain()
			ses.Close()

			ses2 := e.rt.Start()
			for i := 0; i < 50; i++ {
				ses2.Submit(src.Next(0, rng), nil)
			}
			ses2.Drain()
			res := ses2.Close()
			if res.Totals.Committed != 50 {
				t.Fatalf("restarted session committed %d, want 50", res.Totals.Committed)
			}
			if got := sumBalances(e.db, e.tbl, 64); got != 64*1000 {
				t.Fatalf("sum = %d, want %d", got, 64*1000)
			}

			// Double Close must panic, not silently release the in-use
			// guard a newer session may hold.
			func() {
				defer func() {
					if recover() == nil {
						t.Error("second Close did not panic")
					}
				}()
				ses2.Close()
			}()
		})
	}
}

// Submit on a closed session must panic instead of hanging against
// stopped engine threads.
func TestSubmitAfterClosePanics(t *testing.T) {
	for _, e := range allRuntimes(t) {
		e := e
		t.Run(e.rt.Name(), func(t *testing.T) {
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			rng := rand.New(rand.NewSource(1))
			ses := e.rt.Start()
			ses.Submit(src.Next(0, rng), nil)
			ses.Drain()
			ses.Close()
			defer func() {
				if recover() == nil {
					t.Error("Submit after Close did not panic")
				}
			}()
			ses.Submit(src.Next(0, rng), nil)
		})
	}
}

// fixedSpread emits transactions touching exactly one key in each of k
// partitions of a k-way hash partitioning — a deterministic footprint,
// so message counts are exact.
type fixedSpread struct {
	table int
	k     int
	n     uint64
}

func (s *fixedSpread) Next(_ int, rng *rand.Rand) *repro.Txn {
	ops := make([]repro.Op, s.k)
	base := uint64(rng.Int63n(int64(s.n/uint64(s.k)-1))) * uint64(s.k)
	for i := 0; i < s.k; i++ {
		ops[i] = repro.Op{Table: s.table, Key: base + uint64(i), Mode: repro.Write}
	}
	t := &repro.Txn{Ops: ops}
	t.Logic = func(ctx repro.Ctx) error {
		for _, op := range t.Ops {
			rec, err := ctx.Write(op.Table, op.Key)
			if err != nil {
				return err
			}
			repro.AddU64(rec, 0, 1)
		}
		return nil
	}
	return t
}

// Message-plane ablation through the public API: with forwarding, a
// transaction spanning all Ncc CC threads costs exactly Ncc+1 acquisition
// messages; with DisableForwarding the execution thread mediates every
// hop and pays 2·Ncc (§3.3, Figures 2 and 3).
func TestMessagePlaneAblation(t *testing.T) {
	const ncc = 4
	for _, tc := range []struct {
		name    string
		naive   bool
		perTxn  float64
		comment string
	}{
		{"forwarding", false, ncc + 1, "Ncc+1"},
		{"exec-mediated", true, 2 * ncc, "2·Ncc"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			db := repro.NewDB()
			tbl := db.Create(repro.Layout{Name: "t", NumRecords: 1 << 12, RecordSize: 64})
			eng := repro.NewOrthrus(repro.OrthrusConfig{
				DB: db, CCThreads: ncc, ExecThreads: 2, DisableForwarding: tc.naive,
			})
			src := &fixedSpread{table: tbl, k: ncc, n: 1 << 12}
			res := eng.Run(src, 80*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			m := eng.Messages()
			got := float64(m.AcquisitionMessages()) / float64(res.Totals.Committed)
			if got != tc.perTxn {
				t.Fatalf("acquisition messages per txn = %v, want %v (%s); stats %+v commits %d",
					got, tc.perTxn, tc.comment, m, res.Totals.Committed)
			}
		})
	}
}
