// Server: run an engine as a long-lived service instead of a benchmark
// loop. The Runtime/Session lifecycle decouples the engine's threads from
// load generation: Start the engine once, then any caller — here, a pool
// of simulated client connections, in production an RPC front-end —
// Submits transactions and is notified per transaction as it commits.
//
// The second half measures what serving actually cares about: commit
// latency under offered (open-loop) load, where arrivals follow a Poisson
// process at a fixed rate rather than politely waiting for the previous
// transaction to finish.
//
//	go run ./examples/server
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"sync"
	"time"

	"repro"
)

func main() {
	var (
		records   = flag.Uint64("records", 1<<16, "table rows")
		hot       = flag.Uint64("hot", 64, "hot-set size")
		cc        = flag.Int("cc", 2, "ORTHRUS CC threads")
		exec      = flag.Int("exec", 6, "ORTHRUS execution threads")
		clients   = flag.Int("clients", 8, "simulated client connections")
		duration  = flag.Duration("duration", time.Second, "run length per phase")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the server runs")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// Live profiling endpoint, the serving-side complement of
		// orthrus-bench's -cpuprofile: while a phase runs,
		//
		//	go tool pprof http://<addr>/debug/pprof/profile?seconds=5
		//
		// attaches to the hot path under real load.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Printf("pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}

	db := repro.NewDB()
	tbl := db.Create(repro.Layout{Name: "accounts", NumRecords: *records, RecordSize: 100})
	eng := repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: *cc, ExecThreads: *exec})
	newSrc := func() *repro.YCSB {
		return &repro.YCSB{Table: tbl, NumRecords: *records, OpsPerTxn: 10,
			HotRecords: *hot, HotOps: 2}
	}

	// --- Phase 1: serve concurrent clients through a Session -----------
	fmt.Printf("phase 1: %s serving %d clients for %v\n", eng.Name(), *clients, *duration)
	ses := eng.Start()
	var wg sync.WaitGroup
	perClient := make([]repro.Histogram, *clients)
	deadline := time.Now().Add(*duration)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// One synchronous "connection": submit, await the commit
			// notification, repeat — the way an RPC handler would block
			// on its transaction's outcome before responding. Request
			// latency (queueing included) is measured here, at the
			// caller; the session's own histogram reports service
			// latency from worker pickup to commit.
			rng := rand.New(rand.NewSource(int64(c) + 1))
			src := newSrc()
			done := make(chan struct{}, 1)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				ses.Submit(src.Next(c, rng), func(bool) { done <- struct{}{} })
				<-done
				perClient[c].Record(time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	ses.Drain()
	res := ses.Close()
	var reqLat repro.Histogram
	for i := range perClient {
		reqLat.Merge(&perClient[i])
	}
	fmt.Printf("  %v\n  service latency (worker pickup → commit): %v\n", res, &res.Totals.Latency)
	fmt.Printf("  request latency (submit → notification):  %v\n\n", &reqLat)

	// --- Phase 2: open-loop latency under offered load ------------------
	// Calibrate capacity closed-loop, then offer fixed Poisson rates.
	capacity := eng.Run(newSrc(), *duration).Throughput()
	fmt.Printf("phase 2: open loop (closed-loop capacity %.0f txns/s)\n", capacity)
	fmt.Printf("  %-12s %12s %12s %12s %12s %12s\n", "offered_pct", "rate", "achieved", "p50", "p99", "max_lag")
	for _, pct := range []int{25, 50, 75, 90} {
		rate := capacity * float64(pct) / 100
		olr := repro.RunOpenLoop(eng, newSrc(), rate, *duration)
		fmt.Printf("  %-12d %12.0f %12.0f %12v %12v %12v\n", pct, rate, olr.AchievedRate(),
			olr.Latency.Percentile(50), olr.Latency.Percentile(99), olr.MaxLag)
	}
	fmt.Println("\nAt low offered load, open-loop latency is close to the")
	fmt.Println("uncontended commit path; as the rate approaches capacity,")
	fmt.Println("queueing dominates and the tail stretches first.")
}
