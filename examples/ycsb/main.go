// YCSB comparison: sweep the full system lineup over a configurable
// YCSB-style workload, reproducing the shape of the paper's Appendix A
// experiments from the public API.
//
//	go run ./examples/ycsb -hot 64 -threads 16 -duration 1s
//	go run ./examples/ycsb -readonly -hot 0        # Figure 11(a) shape
package main

import (
	"flag"
	"fmt"
	"time"

	"repro"
)

func main() {
	var (
		records  = flag.Uint64("records", 1<<18, "table size")
		hot      = flag.Uint64("hot", 64, "hot-set size (0 = uniform)")
		threads  = flag.Int("threads", 16, "total logical threads per engine")
		readonly = flag.Bool("readonly", false, "read-only transactions instead of 10RMW")
		duration = flag.Duration("duration", time.Second, "run length per system")
	)
	flag.Parse()

	cc := *threads / 5
	if cc < 1 {
		cc = 1
	}
	exec := *threads - cc

	newDB := func() (*repro.DB, int) {
		db := repro.NewDB()
		tbl := db.Create(repro.Layout{Name: "ycsb", NumRecords: *records, RecordSize: 100})
		return db, tbl
	}
	newSrc := func(tbl int) *repro.YCSB {
		s := &repro.YCSB{Table: tbl, NumRecords: *records, OpsPerTxn: 10, ReadOnly: *readonly}
		if *hot > 0 {
			s.HotRecords, s.HotOps = *hot, 2
		}
		return s
	}

	type entry struct {
		name  string
		build func() (repro.Engine, *repro.YCSB)
	}
	lineup := []entry{
		{"orthrus(single)", func() (repro.Engine, *repro.YCSB) {
			db, tbl := newDB()
			src := newSrc(tbl)
			src.Partitions, src.Spread, src.MultiPartitionPct = cc, 1, 100
			return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: cc, ExecThreads: exec}), src
		}},
		{"orthrus(random)", func() (repro.Engine, *repro.YCSB) {
			db, tbl := newDB()
			return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: cc, ExecThreads: exec}), newSrc(tbl)
		}},
		{"deadlock-free", func() (repro.Engine, *repro.YCSB) {
			db, tbl := newDB()
			return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: db, Threads: *threads}), newSrc(tbl)
		}},
		{"2pl(wait-die)", func() (repro.Engine, *repro.YCSB) {
			db, tbl := newDB()
			return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: *threads}), newSrc(tbl)
		}},
		{"2pl(dreadlocks)", func() (repro.Engine, *repro.YCSB) {
			db, tbl := newDB()
			return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.Dreadlocks(*threads), Threads: *threads}), newSrc(tbl)
		}},
		{"partstore", func() (repro.Engine, *repro.YCSB) {
			db, tbl := newDB()
			src := newSrc(tbl)
			src.Partitions, src.Spread, src.MultiPartitionPct = *threads, 1, 100
			return repro.NewPartitionedStore(repro.PartitionedStoreConfig{DB: db, Partitions: *threads}), src
		}},
	}

	kind := "10 read-modify-writes"
	if *readonly {
		kind = "10 reads"
	}
	fmt.Printf("YCSB: %s per txn, %d records, hot set %d, %d threads, %v per run\n\n",
		kind, *records, *hot, *threads, *duration)
	for _, e := range lineup {
		eng, src := e.build()
		if err := src.Validate(); err != nil {
			panic(err)
		}
		res := eng.Run(src, *duration)
		fmt.Printf("%-18s %s\n", e.name, res)
	}
}
