// Quickstart: run the same high-contention workload on ORTHRUS and on
// conventional 2PL and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	const (
		records = 1 << 18 // 262,144 rows
		hot     = 64      // the paper's high-contention hot set
		threads = 16
	)

	fmt.Println("ORTHRUS reproduction quickstart")
	fmt.Printf("workload: 10 RMW/txn, 2 ops on a %d-record hot set, %d logical threads\n\n", hot, threads)

	// Every engine runs against the same kind of database: build one per
	// engine so they start from identical state.
	build := func() (*repro.DB, int) {
		db := repro.NewDB()
		tbl := db.Create(repro.Layout{Name: "accounts", NumRecords: records, RecordSize: 100})
		return db, tbl
	}
	src := func(tbl int) *repro.YCSB {
		return &repro.YCSB{
			Table:      tbl,
			NumRecords: records,
			OpsPerTxn:  10,
			HotRecords: hot,
			HotOps:     2,
		}
	}

	// ORTHRUS: partitioned functionality — dedicated concurrency-control
	// threads and execution threads communicating via message passing.
	db1, tbl1 := build()
	orthrus := repro.NewOrthrus(repro.OrthrusConfig{
		DB:          db1,
		CCThreads:   threads / 4,
		ExecThreads: threads - threads/4,
	})

	// Conventional 2PL with Dreadlocks deadlock detection: each thread
	// does its own locking against a shared lock table.
	db2, tbl2 := build()
	twopl := repro.NewTwoPL(repro.TwoPLConfig{
		DB:      db2,
		Handler: repro.Dreadlocks(threads),
		Threads: threads,
	})

	for i, run := range []struct {
		eng repro.Engine
		tbl int
	}{{orthrus, tbl1}, {twopl, tbl2}} {
		res := run.eng.Run(src(run.tbl), 2*time.Second)
		fmt.Println(res)
		if i == 0 {
			fmt.Println()
		}
	}

	fmt.Println("\nExpected shape (paper Figure 4(b)/12(b)): ORTHRUS sustains a")
	fmt.Println("multiple of 2PL's throughput because no thread ever synchronizes")
	fmt.Println("on lock metadata and no deadlock handling runs at all.")
}
