// Banking: build transactions by hand against the public API — declared
// access sets plus a logic closure — and verify serializable isolation by
// balance conservation under heavy conflict on every engine.
//
// This example shows the "library user" path: you are not limited to the
// bundled YCSB/TPC-C generators; any transaction expressible as (declared
// access set, logic) runs on all engines unchanged.
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
)

const (
	accounts       = 64
	initialBalance = 10_000 // cents
	threads        = 8
)

// transferSource emits hand-built transfer transactions: move a random
// amount between two random accounts, but never overdraw.
type transferSource struct {
	table int
}

func (s *transferSource) Next(_ int, rng *rand.Rand) *repro.Txn {
	from := uint64(rng.Intn(accounts))
	to := uint64(rng.Intn(accounts - 1))
	if to >= from {
		to++
	}
	amount := int64(1 + rng.Intn(100))

	t := &repro.Txn{
		// The declared access set: what the planned engines (ORTHRUS,
		// deadlock-free) lock before running Logic. Conventional 2PL
		// ignores it and locks on first touch.
		Ops: []repro.Op{
			{Table: s.table, Key: from, Mode: repro.Write},
			{Table: s.table, Key: to, Mode: repro.Write},
		},
	}
	t.Logic = func(ctx repro.Ctx) error {
		src, err := ctx.Write(s.table, from)
		if err != nil {
			return err
		}
		dst, err := ctx.Write(s.table, to)
		if err != nil {
			return err
		}
		balance := repro.GetI64(src, 0)
		if balance < amount {
			return nil // insufficient funds: commit as a no-op
		}
		repro.PutI64(src, 0, balance-amount)
		repro.AddI64(dst, 0, amount)
		return nil
	}
	return t
}

func main() {
	fmt.Printf("banking: %d accounts × $%d.00, 2-account transfers, %d threads\n\n",
		accounts, initialBalance/100, threads)

	builders := []struct {
		name  string
		build func(db *repro.DB) repro.Engine
	}{
		{"orthrus", func(db *repro.DB) repro.Engine {
			return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: threads - 2})
		}},
		{"deadlock-free", func(db *repro.DB) repro.Engine {
			return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: db, Threads: threads})
		}},
		{"2pl(wait-die)", func(db *repro.DB) repro.Engine {
			return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: threads})
		}},
		{"2pl(wait-for)", func(db *repro.DB) repro.Engine {
			return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitForGraph(threads), Threads: threads})
		}},
		{"partstore", func(db *repro.DB) repro.Engine {
			return repro.NewPartitionedStore(repro.PartitionedStoreConfig{DB: db, Partitions: threads})
		}},
	}

	for _, b := range builders {
		db := repro.NewDB()
		tbl := db.Create(repro.Layout{Name: "accounts", NumRecords: accounts, RecordSize: 64})
		for k := uint64(0); k < accounts; k++ {
			repro.PutI64(db.Table(tbl).Get(k), 0, initialBalance)
		}

		res := b.build(db).Run(&transferSource{table: tbl}, time.Second)

		var total int64
		for k := uint64(0); k < accounts; k++ {
			total += repro.GetI64(db.Table(tbl).Get(k), 0)
		}
		verdict := "CONSERVED"
		if total != accounts*initialBalance {
			verdict = fmt.Sprintf("VIOLATED (total=%d)", total)
		}
		fmt.Printf("%-14s %10.0f txns/s  aborts=%-7d balance %s\n",
			b.name, res.Throughput(), res.Totals.Aborted, verdict)
	}
}
