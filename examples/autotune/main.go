// Autotune: let the library pick the CC/exec thread split for a thread
// budget by probing the live workload — the §4.2 thread-allocation
// trade-off ("too few execution threads causes under-utilization of
// concurrency control threads, and vice-versa") resolved empirically.
//
//	go run ./examples/autotune -threads 16
package main

import (
	"flag"
	"fmt"
	"time"

	"repro"
)

func main() {
	var (
		threads  = flag.Int("threads", 16, "total thread budget")
		records  = flag.Uint64("records", 1<<18, "table size")
		duration = flag.Duration("duration", time.Second, "measured run after tuning")
	)
	flag.Parse()

	db := repro.NewDB()
	tbl := db.Create(repro.Layout{Name: "ycsb", NumRecords: *records, RecordSize: 100})
	src := &repro.YCSB{Table: tbl, NumRecords: *records, OpsPerTxn: 10, HotRecords: 64, HotOps: 2}

	fmt.Printf("probing CC/exec splits for a %d-thread budget...\n", *threads)
	cfg := repro.AutotuneOrthrus(db, *threads, repro.HashPartitioner(*threads), src, 100*time.Millisecond)
	fmt.Printf("chosen: %d concurrency-control + %d execution threads\n\n", cfg.CCThreads, cfg.ExecThreads)

	res := repro.NewOrthrus(cfg).Run(src, *duration)
	fmt.Println(res)
	fmt.Printf("latency: %v\n", &res.Totals.Latency)
}
