// TPC-C: run the paper's §4.4 evaluation mix (50% NewOrder, 50% Payment,
// with spec remote rates and Payment-by-last-name via OLLP) on the three
// §4.4 systems, then audit the database's money invariants.
//
//	go run ./examples/tpcc -warehouses 16 -threads 16 -duration 1s
//	go run ./examples/tpcc -full    # include OrderStatus/Delivery/StockLevel
package main

import (
	"flag"
	"fmt"
	"time"

	"repro"
)

func main() {
	var (
		warehouses = flag.Int("warehouses", 16, "warehouse count (fewer = more contention)")
		threads    = flag.Int("threads", 16, "total logical threads per engine")
		duration   = flag.Duration("duration", time.Second, "run length per system")
		full       = flag.Bool("full", false, "run the full five-transaction mix")
	)
	flag.Parse()

	cc := *threads / 5
	if cc < 1 {
		cc = 1
	}

	type entry struct {
		name  string
		build func(s *repro.TPCCSchema) repro.Engine
	}
	lineup := []entry{
		{"orthrus", func(s *repro.TPCCSchema) repro.Engine {
			return repro.NewOrthrus(repro.OrthrusConfig{
				DB: s.DB, CCThreads: cc, ExecThreads: *threads - cc,
				// The paper partitions TPC-C's lock space by warehouse id.
				Partition: s.PartitionByWarehouse(cc),
			})
		}},
		{"deadlock-free", func(s *repro.TPCCSchema) repro.Engine {
			return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: s.DB, Threads: *threads})
		}},
		{"2pl(dreadlocks)", func(s *repro.TPCCSchema) repro.Engine {
			return repro.NewTwoPL(repro.TwoPLConfig{
				DB: s.DB, Handler: repro.Dreadlocks(*threads), Threads: *threads,
			})
		}},
	}

	fmt.Printf("TPC-C: %d warehouses, %d threads, %v per system\n", *warehouses, *threads, *duration)
	if *full {
		fmt.Println("mix: 45% NewOrder, 43% Payment, 4% OrderStatus, 4% Delivery, 4% StockLevel")
	} else {
		fmt.Println("mix: 50% NewOrder, 50% Payment (the paper's evaluation mix)")
	}
	fmt.Println()

	for _, e := range lineup {
		s, err := repro.LoadTPCC(repro.TPCCConfig{
			Warehouses: *warehouses, Items: 1000, CustomersPerDistrict: 100,
		})
		if err != nil {
			panic(err)
		}
		src := &repro.TPCCMix{S: s}
		if *full {
			src.NewOrderWeight, src.PaymentWeight = 45, 43
			src.OrderStatusWeight, src.DeliveryWeight, src.StockLevelWeight = 4, 4, 4
		}
		res := e.build(s).Run(src, *duration)
		fmt.Printf("%-16s %s\n", e.name, res)

		// Audit: W_YTD must equal the sum of district YTDs, and every
		// order id allocated by a committed NewOrder must exist.
		if err := s.CheckConsistency(); err != nil {
			fmt.Printf("  CONSISTENCY VIOLATION: %v\n", err)
		} else {
			fmt.Printf("  consistent: %d orders placed, $%d.%02d payment volume\n",
				s.OrdersPlaced(), s.TotalPayments()/100, s.TotalPayments()%100)
		}
	}
}
